package trace

import (
	"path/filepath"
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/page"
	"repro/internal/queryset"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// buildFixture returns a small tree plus a window query set against it.
func buildFixture(t *testing.T) (*rtree.Tree, *storage.MemStore, queryset.Set) {
	t.Helper()
	g := dataset.USMainland(1)
	objs := g.Objects(2, 6000)
	s := storage.NewMemStore()
	tr, err := rtree.New(s, rtree.Params{
		MaxDirEntries: 16, MaxDataEntries: 12, MinFillFrac: 0.4, ReinsertFrac: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		if err := tr.Insert(o.ID, o.MBR); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.FinalizeStats(); err != nil {
		t.Fatal(err)
	}
	s.ResetStats()
	qs := queryset.UniformWindows(g.Space, 400, 100, 3)
	return tr, s, qs
}

func TestRecordProducesRefs(t *testing.T) {
	tr, _, qs := buildFixture(t)
	trc, err := Record(tr, qs)
	if err != nil {
		t.Fatal(err)
	}
	if trc.Name != qs.Name {
		t.Errorf("trace name = %q", trc.Name)
	}
	if trc.Len() < qs.Len() {
		t.Fatalf("trace has %d refs for %d queries", trc.Len(), qs.Len())
	}
	// Every query contributes at least the root access, in query order.
	seen := make(map[uint64]bool)
	var last uint64
	for _, ref := range trc.Refs {
		if ref.Page == page.InvalidID {
			t.Fatal("invalid page in trace")
		}
		if ref.Query < last {
			t.Fatal("query IDs not monotone in trace")
		}
		last = ref.Query
		seen[ref.Query] = true
	}
	if len(seen) != qs.Len() {
		t.Errorf("%d distinct queries in trace, want %d", len(seen), qs.Len())
	}
	// First access of each query is the root.
	if trc.Refs[0].Page != tr.Root() {
		t.Error("first access is not the root")
	}
}

func TestRecordDeterministic(t *testing.T) {
	tr, _, qs := buildFixture(t)
	a, err := Record(tr, qs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Record(tr, qs)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Refs {
		if a.Refs[i] != b.Refs[i] {
			t.Fatalf("ref %d differs", i)
		}
	}
}

// TestReplayEquivalentToLive is the correctness anchor of the experiment
// harness: replaying a recorded trace must produce exactly the same
// hit/miss counts as executing the queries live through the buffer, for
// every policy family. Each policy also replays once more with a counting
// sink attached, which must neither perturb the stats nor disagree with
// them — replay re-emits the event stream live execution would produce.
func TestReplayEquivalentToLive(t *testing.T) {
	tr, store, qs := buildFixture(t)
	capacity := 48
	cases := []struct {
		name string
		mk   func() buffer.Policy
	}{
		{"LRU", func() buffer.Policy { return core.NewLRU() }},
		{"FIFO", func() buffer.Policy { return core.NewFIFO() }},
		{"LRU-P", func() buffer.Policy { return core.NewLRUP() }},
		{"LRU-2", func() buffer.Policy { return core.NewLRUK(2) }},
		{"LRU-3", func() buffer.Policy { return core.NewLRUK(3) }},
		{"spatial-A", func() buffer.Policy { return core.NewSpatial(page.CritA) }},
		{"spatial-EO", func() buffer.Policy { return core.NewSpatial(page.CritEO) }},
		{"SLRU", func() buffer.Policy { return core.NewSLRU(page.CritA, 12) }},
		{"ASB", func() buffer.Policy { return core.NewASB(capacity, core.DefaultASBOptions()) }},
		{"ASB-probe", func() buffer.Policy {
			return core.NewASBProbe(capacity, page.CritA, core.DefaultASBOptions().InitialCandFrac)
		}},
	}
	trc, err := Record(tr, qs)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mLive, err := buffer.NewManager(store, tc.mk(), capacity)
			if err != nil {
				t.Fatal(err)
			}
			live, err := RunLive(tr, qs, mLive)
			if err != nil {
				t.Fatal(err)
			}
			replayed, err := Replay(trc, store, tc.mk(), capacity)
			if err != nil {
				t.Fatal(err)
			}
			if live != replayed {
				t.Errorf("live %+v != replay %+v", live, replayed)
			}

			var counters obs.Counters
			observed, err := ReplayWithSink(trc, store, tc.mk(), capacity, &counters)
			if err != nil {
				t.Fatal(err)
			}
			if observed != live {
				t.Errorf("sink perturbs replay: %+v != %+v", observed, live)
			}
			snap := counters.Snapshot()
			if snap.Requests != live.Requests || snap.Hits != live.Hits ||
				snap.Misses != live.Misses || snap.Evictions != live.Evictions {
				t.Errorf("event counts %+v disagree with stats %+v", snap, live)
			}
		})
	}
}

func TestReplayOnClearsManager(t *testing.T) {
	tr, store, qs := buildFixture(t)
	trc, err := Record(tr, qs)
	if err != nil {
		t.Fatal(err)
	}
	m, err := buffer.NewManager(store, core.NewLRU(), 32)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ReplayOn(trc, m)
	if err != nil {
		t.Fatal(err)
	}
	// Replaying again on the same manager must give identical stats
	// (cold start both times).
	b, err := ReplayOn(trc, m)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("consecutive replays differ: %+v vs %+v", a, b)
	}
}

func TestReplayUnknownPageFails(t *testing.T) {
	_, store, _ := buildFixture(t)
	bad := &Trace{Name: "bad", Refs: []Ref{{Query: 1, Page: 99999}}}
	if _, err := Replay(bad, store, core.NewLRU(), 8); err == nil {
		t.Error("replay of unknown page should fail")
	}
}

func TestPointQueryTraceShorterThanWindows(t *testing.T) {
	tr, _, _ := buildFixture(t)
	g := dataset.USMainland(1)
	points := queryset.Uniform(g.Space, 200, 9)
	windows := queryset.UniformWindows(g.Space, 200, 33, 9)
	tp, err := Record(tr, points)
	if err != nil {
		t.Fatal(err)
	}
	tw, err := Record(tr, windows)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Len() >= tw.Len() {
		t.Errorf("point trace (%d refs) should be shorter than big-window trace (%d refs)",
			tp.Len(), tw.Len())
	}
	_ = geom.Rect{}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tr, _, qs := buildFixture(t)
	trc, err := Record(tr, qs)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.gob")
	if err := trc.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != trc.Name || got.Len() != trc.Len() {
		t.Fatalf("loaded %q/%d, want %q/%d", got.Name, got.Len(), trc.Name, trc.Len())
	}
	for i := range trc.Refs {
		if got.Refs[i] != trc.Refs[i] {
			t.Fatalf("ref %d differs", i)
		}
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Error("loading a missing file should fail")
	}
}
