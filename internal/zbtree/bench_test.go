package zbtree

import (
	"math/rand"
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/page"
	"repro/internal/storage"
)

// BenchmarkPoliciesOnZBTree runs uniform window queries over a z-order
// B-tree under each replacement policy and reports the gain over LRU —
// the cross-SAM ablation of DESIGN.md §6 (do the spatial criteria help on
// a different index structure?).
func BenchmarkPoliciesOnZBTree(b *testing.B) {
	gen := dataset.USMainland(1)
	objs := gen.Objects(2, 30_000)
	store := storage.NewMemStore()
	tr, err := New(store, gen.Space, DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	for _, o := range objs {
		if err := tr.Insert(o.ID, o.MBR); err != nil {
			b.Fatal(err)
		}
	}
	if err := tr.FinalizeStats(); err != nil {
		b.Fatal(err)
	}
	st, err := tr.Stats()
	if err != nil {
		b.Fatal(err)
	}
	frames := st.TotalPages() * 47 / 1000
	rng := rand.New(rand.NewSource(3))
	windows := make([]geom.Rect, 600)
	for i := range windows {
		c := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 500}
		windows[i] = geom.RectFromCenter(c, 10, 5).Intersection(gen.Space)
	}

	run := func(pol buffer.Policy) uint64 {
		m, err := buffer.NewManager(store, pol, frames)
		if err != nil {
			b.Fatal(err)
		}
		for i, w := range windows {
			if w.IsEmpty() {
				continue
			}
			err := tr.WindowQuery(m, buffer.AccessContext{QueryID: uint64(i + 1)}, w,
				func(page.Entry) bool { return true })
			if err != nil {
				b.Fatal(err)
			}
		}
		return m.Stats().DiskReads()
	}
	lru := run(core.NewLRU())

	for _, f := range []core.Factory{
		{Name: "LRU-2", New: func(int) buffer.Policy { return core.NewLRUK(2) }},
		{Name: "A", New: func(int) buffer.Policy { return core.NewSpatial(page.CritA) }},
		{Name: "ASB", New: func(c int) buffer.Policy { return core.NewASB(c, core.DefaultASBOptions()) }},
	} {
		f := f
		b.Run(f.Name, func(b *testing.B) {
			var io uint64
			for i := 0; i < b.N; i++ {
				io = run(f.New(frames))
			}
			b.ReportMetric((float64(lru)/float64(io)-1)*100, "gain%")
		})
	}
}
