package zbtree

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// window is a quick-generatable query rectangle inside the test space.
type window struct {
	CX, CY, W, H float64
}

// Generate implements quick.Generator.
func (window) Generate(r *rand.Rand, size int) reflect.Value {
	return reflect.ValueOf(window{
		CX: r.Float64() * 1000,
		CY: r.Float64() * 500,
		W:  math.Abs(r.NormFloat64()) * 120,
		H:  math.Abs(r.NormFloat64()) * 90,
	})
}

// TestQuickDecompositionSound: for an arbitrary window, every sampled
// in-window point has its z-value covered by the decomposition, and the
// ranges are sorted and non-adjacent.
func TestQuickDecompositionSound(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	f := func(w window) bool {
		q := geom.RectFromCenter(geom.Point{X: w.CX, Y: w.CY}, w.W, w.H).Intersection(space)
		if q.IsEmpty() {
			return true
		}
		ranges := DecomposeWindow(q, space, 8)
		if len(ranges) == 0 {
			return false
		}
		for i := 1; i < len(ranges); i++ {
			if ranges[i].Lo <= ranges[i-1].Hi+1 {
				return false
			}
		}
		for k := 0; k < 40; k++ {
			p := geom.Point{
				X: q.MinX + rng.Float64()*q.Width(),
				Y: q.MinY + rng.Float64()*q.Height(),
			}
			z := Encode(p, space)
			covered := false
			for _, r := range ranges {
				if z >= r.Lo && z <= r.Hi {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickEncodeMonotoneInCells: ordering of z-values respects the
// quadrant hierarchy — points in the low-y half always sort below points
// in the high-y half of the same... (global property: top bit is y's).
func TestQuickEncodeMonotoneInCells(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		clampTo := func(v, lo, hi float64) float64 {
			if math.IsNaN(v) {
				return lo
			}
			return math.Min(hi, math.Max(lo, math.Abs(v)))
		}
		a := geom.Point{X: clampTo(ax, 0, 1000), Y: clampTo(ay, 0, 249)}
		b := geom.Point{X: clampTo(bx, 0, 1000), Y: clampTo(by, 251, 500)}
		// a is in the lower-y half, b in the upper-y half: z(a) < z(b).
		return Encode(a, space) < Encode(b, space)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
