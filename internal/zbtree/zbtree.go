// Package zbtree implements the second spatial-access-method family the
// paper names in §2.3: z-values stored in a B-tree (Orenstein's PROBE
// scheme). Object locations are mapped to a space-filling Z-order curve
// and indexed in a B+-tree; window queries decompose the query rectangle
// into z-ranges and scan them.
//
// The index reuses the page model of package page — leaf entries carry the
// object MBR, so every spatial replacement criterion (A, EA, M, EM, EO)
// and the type/level-based policies work on it unchanged. Pages are read
// through rtree.Reader, so a buffer manager can sit in front exactly as
// for the R*-tree; the ablation benchmarks compare the policies across
// both SAMs.
//
// Representation note: directory entries reuse the otherwise-unused ObjID
// field as the separator z-value of their subtree (the minimum z below),
// keeping one page codec for both access methods.
package zbtree

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/buffer"
	"repro/internal/geom"
	"repro/internal/page"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// zBits is the per-axis resolution of the Z-curve: 16 bits per axis,
// interleaved into a 32-bit z-value.
const zBits = 16

// Encode maps a point to its z-value by bit interleaving the quantized
// coordinates (x in the even bits, y in the odd bits).
func Encode(p geom.Point, space geom.Rect) uint32 {
	qx := quantize(p.X, space.MinX, space.MaxX)
	qy := quantize(p.Y, space.MinY, space.MaxY)
	return interleave(qx) | interleave(qy)<<1
}

// quantize maps v ∈ [lo, hi] to a zBits-bit integer.
func quantize(v, lo, hi float64) uint32 {
	if hi <= lo {
		return 0
	}
	f := (v - lo) / (hi - lo)
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	q := uint32(f * float64((1<<zBits)-1))
	return q
}

// interleave spreads the low 16 bits of v into the even bit positions.
func interleave(v uint32) uint32 {
	v &= 0xFFFF
	v = (v | v<<8) & 0x00FF00FF
	v = (v | v<<4) & 0x0F0F0F0F
	v = (v | v<<2) & 0x33333333
	v = (v | v<<1) & 0x55555555
	return v
}

// Params configure the B+-tree fan-outs. Defaults mirror the paper's
// R*-tree page capacities.
type Params struct {
	MaxDirEntries  int
	MaxLeafEntries int
}

// DefaultParams returns fan-outs matching the paper's page sizes.
func DefaultParams() Params {
	return Params{MaxDirEntries: 51, MaxLeafEntries: 42}
}

// Tree is a B+-tree over z-values backed by a page store. It supports
// insertion and (window) queries; like the published z-ordering studies,
// it is a read-optimized index — deletion is not implemented.
type Tree struct {
	store  storage.Store
	params Params
	space  geom.Rect
	root   page.ID
	height int
	count  int
}

// New creates an empty z-B+-tree over the given data space.
func New(store storage.Store, space geom.Rect, params Params) (*Tree, error) {
	if store == nil {
		return nil, errors.New("zbtree: nil store")
	}
	if !space.Valid() {
		return nil, fmt.Errorf("zbtree: invalid space %v", space)
	}
	if params.MaxDirEntries < 4 || params.MaxLeafEntries < 4 {
		return nil, fmt.Errorf("zbtree: fan-outs must be ≥ 4")
	}
	rootID := store.Allocate()
	root := page.New(rootID, page.TypeData, 0, params.MaxLeafEntries)
	if err := store.Write(root); err != nil {
		return nil, err
	}
	return &Tree{store: store, params: params, space: space, root: rootID, height: 1}, nil
}

// Root returns the root page ID.
func (t *Tree) Root() page.ID { return t.root }

// Height returns the number of levels.
func (t *Tree) Height() int { return t.height }

// NumObjects returns the number of stored objects.
func (t *Tree) NumObjects() int { return t.count }

// Store returns the backing store.
func (t *Tree) Store() storage.Store { return t.store }

// Space returns the data space of the z-curve.
func (t *Tree) Space() geom.Rect { return t.space }

// zOf returns the z-value of an entry: leaf entries are keyed by the
// z-value of their MBR centre; directory entries carry their separator in
// ObjID.
func (t *Tree) zOfLeaf(e page.Entry) uint32 {
	return Encode(e.MBR.Center(), t.space)
}

// maxEntries returns the fan-out at a level.
func (t *Tree) maxEntries(level int) int {
	if level == 0 {
		return t.params.MaxLeafEntries
	}
	return t.params.MaxDirEntries
}

// Insert adds an object. Entries within a page stay sorted by z-value.
func (t *Tree) Insert(objID uint64, mbr geom.Rect) error {
	if !mbr.Valid() {
		return fmt.Errorf("zbtree: insert object %d: invalid MBR %v", objID, mbr)
	}
	z := Encode(mbr.Center(), t.space)

	// Descend, remembering the path.
	type step struct {
		node *page.Page
		idx  int
	}
	var path []step
	node, err := t.store.Read(t.root)
	if err != nil {
		return err
	}
	for node.Level > 0 {
		idx := t.childIndex(node, z)
		child, err := t.store.Read(node.Entries[idx].Child)
		if err != nil {
			return err
		}
		path = append(path, step{node: node, idx: idx})
		node = child
	}

	// Insert into the leaf, keeping z order.
	e := page.Entry{MBR: mbr, ObjID: objID}
	pos := sort.Search(len(node.Entries), func(i int) bool {
		return t.zOfLeaf(node.Entries[i]) > z
	})
	node.Entries = append(node.Entries, page.Entry{})
	copy(node.Entries[pos+1:], node.Entries[pos:])
	node.Entries[pos] = e
	t.count++

	// Split upward while over capacity.
	for {
		if len(node.Entries) <= t.maxEntries(node.Level) {
			node.RecomputeFast()
			if err := t.store.Write(node); err != nil {
				return err
			}
			// Refresh ancestor MBRs and separators bottom-up.
			child := node
			for i := len(path) - 1; i >= 0; i-- {
				parent := path[i].node
				parent.Entries[path[i].idx].MBR = child.MBR
				parent.Entries[path[i].idx].ObjID = uint64(t.minZ(child))
				parent.RecomputeFast()
				if err := t.store.Write(parent); err != nil {
					return err
				}
				child = parent
			}
			return nil
		}
		// Split in the middle.
		mid := len(node.Entries) / 2
		sibID := t.store.Allocate()
		sib := page.New(sibID, node.Type, node.Level, t.maxEntries(node.Level))
		sib.Entries = append(sib.Entries, node.Entries[mid:]...)
		node.Entries = node.Entries[:mid]
		node.RecomputeFast()
		sib.RecomputeFast()
		if err := t.store.Write(node); err != nil {
			return err
		}
		if err := t.store.Write(sib); err != nil {
			return err
		}

		sibEntry := page.Entry{MBR: sib.MBR, Child: sibID, ObjID: uint64(t.minZ(sib))}
		if len(path) == 0 {
			// Grow a new root.
			rootID := t.store.Allocate()
			root := page.New(rootID, page.TypeDirectory, node.Level+1, t.params.MaxDirEntries)
			root.Entries = append(root.Entries,
				page.Entry{MBR: node.MBR, Child: node.ID, ObjID: uint64(t.minZ(node))},
				sibEntry,
			)
			root.RecomputeFast()
			if err := t.store.Write(root); err != nil {
				return err
			}
			t.root = rootID
			t.height++
			return nil
		}
		parent := path[len(path)-1].node
		idx := path[len(path)-1].idx
		parent.Entries[idx].MBR = node.MBR
		parent.Entries[idx].ObjID = uint64(t.minZ(node))
		// Insert the sibling entry right after its left neighbour.
		parent.Entries = append(parent.Entries, page.Entry{})
		copy(parent.Entries[idx+2:], parent.Entries[idx+1:])
		parent.Entries[idx+1] = sibEntry
		path = path[:len(path)-1]
		node = parent
	}
}

// minZ returns the separator (minimum z) of a node.
func (t *Tree) minZ(n *page.Page) uint32 {
	if len(n.Entries) == 0 {
		return 0
	}
	if n.Level == 0 {
		return t.zOfLeaf(n.Entries[0])
	}
	return uint32(n.Entries[0].ObjID)
}

// childIndex returns the index of the child whose key range covers z: the
// last entry with separator ≤ z (or 0).
func (t *Tree) childIndex(node *page.Page, z uint32) int {
	idx := sort.Search(len(node.Entries), func(i int) bool {
		return uint32(node.Entries[i].ObjID) > z
	}) - 1
	if idx < 0 {
		idx = 0
	}
	return idx
}

// RangeSearch reports all leaf entries with z-value in [zlo, zhi], reading
// pages through rd.
func (t *Tree) RangeSearch(rd rtree.Reader, ctx buffer.AccessContext, zlo, zhi uint32, fn rtree.Visit) error {
	var walk func(id page.ID) (bool, error)
	walk = func(id page.ID) (bool, error) {
		node, err := rd.Get(id, ctx)
		if err != nil {
			return false, err
		}
		if node.Level == 0 {
			for _, e := range node.Entries {
				z := t.zOfLeaf(e)
				if z < zlo || z > zhi {
					continue
				}
				if !fn(e) {
					return false, nil
				}
			}
			return true, nil
		}
		for i, e := range node.Entries {
			sep := uint32(e.ObjID)
			if sep > zhi {
				break
			}
			// The child covers [sep, nextSep); skip it if entirely below.
			if i+1 < len(node.Entries) && uint32(node.Entries[i+1].ObjID) <= zlo {
				continue
			}
			cont, err := walk(e.Child)
			if err != nil || !cont {
				return cont, err
			}
		}
		return true, nil
	}
	_, err := walk(t.root)
	return err
}

// WindowQuery reports all entries whose MBR intersects the window. The
// window is decomposed into z-ranges by recursive quadrant splitting;
// each range is scanned and filtered by exact MBR intersection.
func (t *Tree) WindowQuery(rd rtree.Reader, ctx buffer.AccessContext, window geom.Rect, fn rtree.Visit) error {
	ranges := DecomposeWindow(window, t.space, 8)
	for _, r := range ranges {
		stop := false
		err := t.RangeSearch(rd, ctx, r.Lo, r.Hi, func(e page.Entry) bool {
			if e.MBR.Intersects(window) {
				if !fn(e) {
					stop = true
					return false
				}
			}
			return true
		})
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

// ZRange is a closed interval of z-values.
type ZRange struct {
	Lo, Hi uint32
}

// DecomposeWindow covers the window with z-ranges by recursively
// splitting the space into quadrants down to maxDepth levels: a quadrant
// fully inside the window contributes its whole (contiguous) z-range; a
// partially overlapping quadrant is split further, or emitted whole at
// the depth limit. Adjacent ranges are merged.
func DecomposeWindow(window, space geom.Rect, maxDepth int) []ZRange {
	var out []ZRange
	var rec func(cell geom.Rect, zlo, zhi uint64, depth int)
	rec = func(cell geom.Rect, zlo, zhi uint64, depth int) {
		if !cell.Intersects(window) {
			return
		}
		if window.Contains(cell) || depth >= maxDepth || zhi-zlo < 4 {
			out = append(out, ZRange{Lo: uint32(zlo), Hi: uint32(zhi)})
			return
		}
		cx := (cell.MinX + cell.MaxX) / 2
		cy := (cell.MinY + cell.MaxY) / 2
		quarter := (zhi - zlo + 1) / 4
		// Z-curve quadrant order: (low-x, low-y), (high-x, low-y),
		// (low-x, high-y), (high-x, high-y) — x in the even bits.
		quads := [4]geom.Rect{
			{MinX: cell.MinX, MinY: cell.MinY, MaxX: cx, MaxY: cy},
			{MinX: cx, MinY: cell.MinY, MaxX: cell.MaxX, MaxY: cy},
			{MinX: cell.MinX, MinY: cy, MaxX: cx, MaxY: cell.MaxY},
			{MinX: cx, MinY: cy, MaxX: cell.MaxX, MaxY: cell.MaxY},
		}
		for i, q := range quads {
			lo := zlo + uint64(i)*quarter
			rec(q, lo, lo+quarter-1, depth+1)
		}
	}
	rec(space, 0, (1<<(2*zBits))-1, 0)

	// Merge adjacent/overlapping ranges (the recursion emits in z order).
	merged := out[:0]
	for _, r := range out {
		if n := len(merged); n > 0 && r.Lo <= merged[n-1].Hi+1 {
			if r.Hi > merged[n-1].Hi {
				merged[n-1].Hi = r.Hi
			}
			continue
		}
		merged = append(merged, r)
	}
	return merged
}

// Stats summarizes the tree structure.
type Stats struct {
	Height    int
	DirPages  int
	LeafPages int
	Objects   int
}

// TotalPages returns the page count.
func (s Stats) TotalPages() int { return s.DirPages + s.LeafPages }

// Stats walks the tree.
func (t *Tree) Stats() (Stats, error) {
	st := Stats{Height: t.height, Objects: t.count}
	var walk func(id page.ID) error
	walk = func(id page.ID) error {
		node, err := t.store.Read(id)
		if err != nil {
			return err
		}
		if node.Level == 0 {
			st.LeafPages++
			return nil
		}
		st.DirPages++
		for _, e := range node.Entries {
			if err := walk(e.Child); err != nil {
				return err
			}
		}
		return nil
	}
	err := walk(t.root)
	return st, err
}

// FinalizeStats recomputes full page statistics (including entry overlap)
// for every node, enabling the EO criterion.
func (t *Tree) FinalizeStats() error {
	var walk func(id page.ID) error
	walk = func(id page.ID) error {
		node, err := t.store.Read(id)
		if err != nil {
			return err
		}
		node.Recompute()
		if err := t.store.Write(node); err != nil {
			return err
		}
		if node.Level == 0 {
			return nil
		}
		for _, e := range node.Entries {
			if err := walk(e.Child); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.root)
}
