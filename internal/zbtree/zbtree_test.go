package zbtree

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/buffer"
	"repro/internal/geom"
	"repro/internal/page"
	"repro/internal/rtree"
	"repro/internal/storage"
)

var space = geom.NewRect(0, 0, 1000, 500)

func TestEncodeQuadrantOrder(t *testing.T) {
	// The four quadrants of the space must map to increasing z prefixes
	// in the order LL, LR, UL, UR (x in the even bits).
	ll := Encode(geom.Point{X: 100, Y: 100}, space)
	lr := Encode(geom.Point{X: 900, Y: 100}, space)
	ul := Encode(geom.Point{X: 100, Y: 400}, space)
	ur := Encode(geom.Point{X: 900, Y: 400}, space)
	if !(ll < lr && lr < ul && ul < ur) {
		t.Errorf("quadrant z order violated: LL=%x LR=%x UL=%x UR=%x", ll, lr, ul, ur)
	}
}

func TestEncodeBounds(t *testing.T) {
	if z := Encode(geom.Point{X: 0, Y: 0}, space); z != 0 {
		t.Errorf("min corner z = %x, want 0", z)
	}
	if z := Encode(geom.Point{X: 1000, Y: 500}, space); z != 0xFFFFFFFF {
		t.Errorf("max corner z = %x, want FFFFFFFF", z)
	}
	// Out-of-space points clamp.
	if z := Encode(geom.Point{X: -50, Y: -50}, space); z != 0 {
		t.Errorf("clamped z = %x", z)
	}
	// Degenerate space.
	if z := Encode(geom.Point{X: 1, Y: 1}, geom.RectFromPoint(geom.Point{})); z != 0 {
		t.Errorf("degenerate space z = %x", z)
	}
}

func TestEncodeLocality(t *testing.T) {
	// Two points in the same 64×64-quantum cell share the z prefix above
	// the cell bits (the Z-curve locality property). The pair below is
	// chosen away from cell boundaries; the guard asserts the premise.
	p1 := geom.Point{X: 301.0, Y: 201.0}
	p2 := geom.Point{X: 301.2, Y: 201.1}
	qx1 := quantize(p1.X, space.MinX, space.MaxX)
	qx2 := quantize(p2.X, space.MinX, space.MaxX)
	qy1 := quantize(p1.Y, space.MinY, space.MaxY)
	qy2 := quantize(p2.Y, space.MinY, space.MaxY)
	if qx1/64 != qx2/64 || qy1/64 != qy2/64 {
		t.Fatalf("test premise broken: points not in the same cell")
	}
	a := Encode(p1, space)
	b := Encode(p2, space)
	if (a^b)>>12 != 0 {
		t.Errorf("same-cell points differ above the cell bits: %x vs %x", a, b)
	}
}

func TestNewValidation(t *testing.T) {
	s := storage.NewMemStore()
	if _, err := New(nil, space, DefaultParams()); err == nil {
		t.Error("nil store should fail")
	}
	if _, err := New(s, geom.EmptyRect(), DefaultParams()); err == nil {
		t.Error("empty space should fail")
	}
	if _, err := New(s, space, Params{MaxDirEntries: 2, MaxLeafEntries: 2}); err == nil {
		t.Error("tiny fan-out should fail")
	}
}

// buildZ inserts n clustered objects and returns the tree.
func buildZ(t *testing.T, n int, seed int64) (*Tree, []geom.Rect) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := storage.NewMemStore()
	tr, err := New(s, space, Params{MaxDirEntries: 8, MaxLeafEntries: 6})
	if err != nil {
		t.Fatal(err)
	}
	mbrs := make([]geom.Rect, n)
	for i := range mbrs {
		x := rng.Float64() * 1000
		y := rng.Float64() * 500
		mbrs[i] = geom.NewRect(x, y, x+rng.Float64()*3, y+rng.Float64()*3).Intersection(space)
		if err := tr.Insert(uint64(i+1), mbrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	return tr, mbrs
}

// validateZ checks the B+-tree invariants: leaf z order, separator
// correctness, level consistency and object count.
func validateZ(t *testing.T, tr *Tree) {
	t.Helper()
	objects := 0
	var walk func(id page.ID, expectLevel int) uint32
	walk = func(id page.ID, expectLevel int) uint32 {
		node, err := tr.store.Read(id)
		if err != nil {
			t.Fatal(err)
		}
		if expectLevel >= 0 && node.Level != expectLevel {
			t.Fatalf("node %d at level %d, want %d", id, node.Level, expectLevel)
		}
		if node.Level == 0 {
			objects += len(node.Entries)
			var last uint32
			for i, e := range node.Entries {
				z := tr.zOfLeaf(e)
				if i > 0 && z < last {
					t.Fatalf("leaf %d entries out of z order", id)
				}
				last = z
			}
			return tr.minZ(node)
		}
		var lastSep uint32
		for i, e := range node.Entries {
			sep := uint32(e.ObjID)
			if i > 0 && sep < lastSep {
				t.Fatalf("directory %d separators out of order", id)
			}
			lastSep = sep
			childMin := walk(e.Child, node.Level-1)
			if childMin != sep {
				t.Fatalf("directory %d entry %d separator %x != child min %x", id, i, sep, childMin)
			}
		}
		return uint32(node.Entries[0].ObjID)
	}
	walk(tr.root, tr.height-1)
	if objects != tr.NumObjects() {
		t.Fatalf("%d reachable objects, NumObjects() = %d", objects, tr.NumObjects())
	}
}

func TestInsertAndValidate(t *testing.T) {
	for _, n := range []int{1, 6, 7, 50, 500, 3000} {
		tr, _ := buildZ(t, n, int64(n))
		if tr.NumObjects() != n {
			t.Errorf("n=%d: NumObjects = %d", n, tr.NumObjects())
		}
		validateZ(t, tr)
	}
}

func TestTreeGrows(t *testing.T) {
	tr, _ := buildZ(t, 3000, 1)
	if tr.Height() < 3 {
		t.Errorf("height = %d for 3000 objects at fan-out 6", tr.Height())
	}
	st, err := tr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.LeafPages < 3000/6 || st.DirPages == 0 {
		t.Errorf("stats: %+v", st)
	}
	if st.TotalPages() != st.LeafPages+st.DirPages {
		t.Error("TotalPages inconsistent")
	}
}

func TestRangeSearchMatchesBruteForce(t *testing.T) {
	tr, mbrs := buildZ(t, 1200, 2)
	rd := rtree.StoreReader{Store: tr.Store()}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		a := rng.Uint32()
		b := rng.Uint32()
		if a > b {
			a, b = b, a
		}
		var got []uint64
		err := tr.RangeSearch(rd, buffer.AccessContext{}, a, b, func(e page.Entry) bool {
			got = append(got, e.ObjID)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		var want []uint64
		for i, m := range mbrs {
			z := Encode(m.Center(), space)
			if z >= a && z <= b {
				want = append(want, uint64(i+1))
			}
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: mismatch at %d", trial, i)
			}
		}
	}
}

func TestWindowQueryMatchesBruteForce(t *testing.T) {
	tr, mbrs := buildZ(t, 1500, 4)
	rd := rtree.StoreReader{Store: tr.Store()}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		c := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 500}
		w := geom.RectFromCenter(c, rng.Float64()*100, rng.Float64()*80).Intersection(space)
		if w.IsEmpty() {
			continue
		}
		var got []uint64
		err := tr.WindowQuery(rd, buffer.AccessContext{QueryID: uint64(trial)}, w,
			func(e page.Entry) bool { got = append(got, e.ObjID); return true })
		if err != nil {
			t.Fatal(err)
		}
		var want []uint64
		for i, m := range mbrs {
			// The z-index keys objects by their centre: an object is
			// found iff its centre's cell range is scanned AND its MBR
			// intersects. The decomposition covers every cell the window
			// touches, and centres outside the window can still have
			// intersecting MBRs only if the object straddles the window
			// edge — those are found only when their centre cell is
			// scanned. The query contract of a z-index is therefore
			// centre-in-window OR intersecting-with-scanned-cell; the
			// brute force below mirrors the implementable contract:
			// intersecting MBRs whose centres fall in scanned ranges.
			z := Encode(m.Center(), space)
			inRange := false
			for _, r := range DecomposeWindow(w, space, 8) {
				if z >= r.Lo && z <= r.Hi {
					inRange = true
					break
				}
			}
			if inRange && m.Intersects(w) {
				want = append(want, uint64(i+1))
			}
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: mismatch at %d", trial, i)
			}
		}
	}
}

func TestWindowQueryFindsAllCenteredObjects(t *testing.T) {
	// Completeness guarantee: every object whose CENTRE lies in the
	// window must be reported (the decomposition covers the window).
	tr, mbrs := buildZ(t, 1500, 6)
	rd := rtree.StoreReader{Store: tr.Store()}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		c := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 500}
		w := geom.RectFromCenter(c, rng.Float64()*120, rng.Float64()*90).Intersection(space)
		if w.IsEmpty() {
			continue
		}
		got := map[uint64]bool{}
		err := tr.WindowQuery(rd, buffer.AccessContext{}, w,
			func(e page.Entry) bool { got[e.ObjID] = true; return true })
		if err != nil {
			t.Fatal(err)
		}
		for i, m := range mbrs {
			if w.ContainsPoint(m.Center()) && !got[uint64(i+1)] {
				t.Fatalf("trial %d: object %d (centre in window) missing", trial, i+1)
			}
		}
	}
}

func TestDecomposeWindowCoversWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		c := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 500}
		w := geom.RectFromCenter(c, rng.Float64()*150, rng.Float64()*100).Intersection(space)
		if w.IsEmpty() {
			continue
		}
		ranges := DecomposeWindow(w, space, 8)
		if len(ranges) == 0 {
			t.Fatal("no ranges for non-empty window")
		}
		// Ranges are sorted, disjoint and non-adjacent after merging.
		for i := 1; i < len(ranges); i++ {
			if ranges[i].Lo <= ranges[i-1].Hi+1 {
				t.Fatalf("ranges not merged/sorted: %v then %v", ranges[i-1], ranges[i])
			}
		}
		// Every random point inside the window must have its z covered.
		for k := 0; k < 50; k++ {
			p := geom.Point{
				X: w.MinX + rng.Float64()*w.Width(),
				Y: w.MinY + rng.Float64()*w.Height(),
			}
			z := Encode(p, space)
			covered := false
			for _, r := range ranges {
				if z >= r.Lo && z <= r.Hi {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("point %v (z=%x) not covered by decomposition", p, z)
			}
		}
	}
}

func TestQueriesThroughBufferManager(t *testing.T) {
	tr, _ := buildZ(t, 2000, 9)
	tr.Store().(*storage.MemStore).ResetStats()
	if err := tr.FinalizeStats(); err != nil {
		t.Fatal(err)
	}
	pol := &countingPolicy{}
	m, err := buffer.NewManager(tr.Store(), pol, 24)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 40; trial++ {
		c := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 500}
		w := geom.RectFromCenter(c, 60, 40).Intersection(space)
		err := tr.WindowQuery(m, buffer.AccessContext{QueryID: uint64(trial)}, w,
			func(page.Entry) bool { return true })
		if err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("expected hits and misses through the buffer: %+v", st)
	}
}

// countingPolicy is a trivial FIFO used to exercise the Reader plumbing.
type countingPolicy struct {
	frames []*buffer.Frame
}

func (p *countingPolicy) Name() string { return "counting" }
func (p *countingPolicy) OnAdmit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	p.frames = append(p.frames, f)
}
func (p *countingPolicy) OnHit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {}
func (p *countingPolicy) Victim(ctx buffer.AccessContext) *buffer.Frame {
	for _, f := range p.frames {
		if !f.Pinned() {
			return f
		}
	}
	return nil
}
func (p *countingPolicy) OnEvict(f *buffer.Frame) {
	for i, g := range p.frames {
		if g == f {
			p.frames = append(p.frames[:i], p.frames[i+1:]...)
			return
		}
	}
}
func (p *countingPolicy) Reset() { p.frames = nil }

func TestInsertRejectsInvalidMBR(t *testing.T) {
	s := storage.NewMemStore()
	tr, err := New(s, space, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(1, geom.EmptyRect()); err == nil {
		t.Error("empty MBR should fail")
	}
}
